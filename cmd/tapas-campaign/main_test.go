package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func examplePath(name string) string {
	return filepath.Join("..", "..", "examples", "scenarios", name)
}

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"axis params:", "workload.saas_fraction", "metrics:", "norm_peak_power"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := map[string]struct {
		args     []string
		wantCode int
		wantErr  string
	}{
		"no specs":       {nil, 2, "no spec files"},
		"unknown format": {[]string{"-format", "yaml", "x.json"}, 2, `unknown -format "yaml"`},
		"unknown flag":   {[]string{"-bogus"}, 2, "flag provided but not defined"},
		"missing spec":   {[]string{"-validate", "definitely-missing.json"}, 1, "definitely-missing.json"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var out, errOut strings.Builder
			code := run(tc.args, &out, &errOut)
			if code != tc.wantCode {
				t.Errorf("exit code %d, want %d (stderr: %s)", code, tc.wantCode, errOut.String())
			}
			if !strings.Contains(errOut.String(), tc.wantErr) {
				t.Errorf("stderr %q does not contain %q", errOut.String(), tc.wantErr)
			}
		})
	}
}

func TestRunValidateExamples(t *testing.T) {
	specs, err := filepath.Glob(examplePath("*.json"))
	if err != nil || len(specs) == 0 {
		t.Fatalf("no example specs found: %v", err)
	}
	var out, errOut strings.Builder
	if code := run(append([]string{"-validate"}, specs...), &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if got := strings.Count(errOut.String(), ": ok ("); got != len(specs) {
		t.Errorf("validated %d of %d specs:\n%s", got, len(specs), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("-validate wrote to stdout: %q", out.String())
	}
}

func TestRunValidateRejectsBadSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"name": "bad", "bogus_field": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-validate", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit code %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "bogus_field") {
		t.Errorf("stderr %q does not name the unknown field", errOut.String())
	}
}

func TestRunQuickCampaign(t *testing.T) {
	spec := `{
	  "name": "smoke",
	  "layout": {"preset": "small"},
	  "duration": "5m",
	  "policies": ["baseline"],
	  "report": {"format": "csv"}
	}`
	path := filepath.Join(t.TempDir(), "smoke.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-parallel", "2", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "spec,policy,") {
		t.Errorf("CSV report missing header:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "1 runs (1 compiles) in") {
		t.Errorf("stderr missing timing line: %q", errOut.String())
	}
}

// TestRunProgressAndCacheFlags runs one spec twice in a single invocation
// with -progress: progress lines stream to stderr, stdout carries both
// reports back to back, and the shared compile cache serves the repeat.
func TestRunProgressAndCacheFlags(t *testing.T) {
	spec := `{
	  "name": "smoke",
	  "layout": {"preset": "small"},
	  "duration": "5m",
	  "policies": ["baseline"],
	  "report": {"format": "csv"}
	}`
	path := filepath.Join(t.TempDir(), "smoke.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-progress", "-cache-size", "8", path, path}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if got := strings.Count(out.String(), "spec,policy,"); got != 2 {
		t.Errorf("stdout has %d CSV reports, want 2:\n%s", got, out.String())
	}
	if !strings.Contains(errOut.String(), "1/1 runs") {
		t.Errorf("stderr missing progress lines: %q", errOut.String())
	}
	if got := strings.Count(errOut.String(), "smoke: 1 points"); got != 2 {
		t.Errorf("stderr has %d campaign headers, want 2: %q", got, errOut.String())
	}
}
