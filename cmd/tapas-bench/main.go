// Command tapas-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	tapas-bench -list
//	tapas-bench -run fig19            # one experiment at paper scale
//	tapas-bench -run all -scale 0.25  # everything, quarter scale
//	tapas-bench -run all -parallel 4  # bound the worker pool
//
// Reports go to stdout; timing goes to stderr, so stdout is byte-identical
// for any -parallel value (including the sequential -parallel=1).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	tapas "github.com/tapas-sim/tapas"
)

func main() {
	var (
		run        = flag.String("run", "", "experiment ID to run, or 'all'")
		scale      = flag.Float64("scale", 1.0, "cluster/duration scale (1.0 = paper scale)")
		seed       = flag.Uint64("seed", 42, "deterministic seed")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for independent runs (1 = sequential)")
		list       = flag.Bool("list", false, "list available experiments")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, id := range tapas.ExperimentIDs() {
			title, _ := tapas.ExperimentTitle(id)
			fmt.Printf("  %-8s %s\n", id, title)
		}
		if *run == "" {
			fmt.Println("\nrun with: tapas-bench -run <id>|all [-scale 0.25] [-parallel N]")
		}
		return
	}

	ids := []string{*run}
	if *run == "all" {
		ids = tapas.ExperimentIDs()
	}
	stopProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tapas-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "tapas-bench: %v\n", err)
			os.Exit(1)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	params := tapas.ExperimentParams{Scale: *scale, Seed: *seed, Parallel: *parallel}
	start := time.Now()
	err := tapas.RunExperiments(ids, params, os.Stdout)
	// Flush the profile before any exit: a profile of a failing run is the
	// one most worth keeping.
	stopProfile()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tapas-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "# %d experiment(s) completed in %v (parallel=%d)\n",
		len(ids), time.Since(start).Round(time.Millisecond), *parallel)
}
