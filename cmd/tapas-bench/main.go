// Command tapas-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	tapas-bench -list
//	tapas-bench -run fig19            # one experiment at paper scale
//	tapas-bench -run all -scale 0.25  # everything, quarter scale
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	tapas "github.com/tapas-sim/tapas"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment ID to run, or 'all'")
		scale = flag.Float64("scale", 1.0, "cluster/duration scale (1.0 = paper scale)")
		seed  = flag.Uint64("seed", 42, "deterministic seed")
		list  = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, id := range tapas.ExperimentIDs() {
			title, _ := tapas.ExperimentTitle(id)
			fmt.Printf("  %-8s %s\n", id, title)
		}
		if *run == "" {
			fmt.Println("\nrun with: tapas-bench -run <id>|all [-scale 0.25]")
		}
		return
	}

	ids := []string{*run}
	if *run == "all" {
		ids = tapas.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		if err := tapas.RunExperiment(id, *scale, *seed, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "tapas-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# %s completed in %v\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
