// Command doclint enforces the repository's documentation contract, run by
// the doc-lint CI job:
//
//   - every exported symbol of the public API (tapas.go) carries a doc
//     comment (functions, methods, and each exported type/const/var spec);
//   - every relative link in README.md and ARCHITECTURE.md resolves to a
//     file that exists;
//   - every fenced ```go example block in those documents is gofmt-clean
//     (full files as-is, statement snippets via a function wrapper).
//
// It prints one line per violation and exits non-zero when any were found.
package main

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	var violations []string
	violations = append(violations, apiDocViolations("tapas.go")...)
	for _, doc := range []string{"README.md", "ARCHITECTURE.md"} {
		violations = append(violations, linkViolations(doc)...)
		violations = append(violations, goBlockViolations(doc)...)
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("doclint: ok")
}

// apiDocViolations reports every exported declaration in the given Go file
// that lacks a doc comment.
func apiDocViolations(path string) []string {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var out []string
	missing := func(pos token.Pos, what, name string) {
		out = append(out, fmt.Sprintf("%s: exported %s %s has no doc comment",
			fset.Position(pos), what, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				missing(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						missing(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							missing(name.Pos(), d.Tok.String(), name.Name)
						}
					}
				}
			}
		}
	}
	return out
}

var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// linkViolations reports markdown links whose relative targets do not exist
// on disk. External schemes and pure in-page anchors are skipped.
func linkViolations(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var out []string
	for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		target = strings.SplitN(target, "#", 2)[0]
		rel := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
		if _, err := os.Stat(rel); err != nil {
			out = append(out, fmt.Sprintf("%s: dead relative link %q", path, m[1]))
		}
	}
	return out
}

// goBlockViolations reports fenced ```go blocks that are not gofmt-clean.
// A block is accepted if it formats to itself either as a full file or,
// for statement snippets, wrapped in a throwaway function (the wrapper's
// uniform tab indent is stripped before comparing).
func goBlockViolations(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var out []string
	lines := strings.Split(string(data), "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		start := i + 1
		j := start
		for j < len(lines) && strings.TrimSpace(lines[j]) != "```" {
			j++
		}
		if j == len(lines) {
			out = append(out, fmt.Sprintf("%s:%d: unterminated ```go block", path, i+1))
			break
		}
		block := strings.Join(lines[start:j], "\n") + "\n"
		if !gofmtClean(block) {
			out = append(out, fmt.Sprintf("%s:%d: ```go block is not gofmt-clean", path, i+1))
		}
		i = j
	}
	return out
}

func gofmtClean(block string) bool {
	if fm, err := format.Source([]byte(block)); err == nil {
		return string(fm) == block
	}
	wrapped := "package p\n\nfunc _() {\n" + indent(block) + "}\n"
	fm, err := format.Source([]byte(wrapped))
	if err != nil {
		return false
	}
	return string(fm) == wrapped
}

// indent prefixes every non-empty line with one tab, matching what gofmt
// emits for a function body.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = "\t" + l
		}
	}
	return strings.Join(lines, "\n") + "\n"
}
