#!/usr/bin/env bash
# Runs the figure/table benchmarks with -benchmem and records a dated JSON
# baseline (BENCH_<yyyymmdd>.json) at the repo root, so the performance
# trajectory is tracked across PRs.
#
# Usage:
#   scripts/bench.sh                      # default 2 iterations per benchmark
#   BENCHTIME=5x scripts/bench.sh         # more iterations for steadier numbers
#   BENCH_FILTER='Fig2.' scripts/bench.sh # subset of benchmarks
#   BENCH_OUT=bench_ci.json scripts/bench.sh  # explicit output path (CI)
#
# The BENCH_FILTER regex is applied both to `go test -bench` and to the JSON
# serialization, and the script fails when it matches no benchmark at all —
# a typo'd filter must not silently write an empty baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2x}"
filter="${BENCH_FILTER:-Table1|Fig[0-9]+|Table2|EngineTick|PowerGovTick|CompileScenario|CompiledScenarioRun|CompileCache(Hit|Miss)|Campaign(Cold|Warm)Cache|Hyperscale}"
out="${BENCH_OUT:-BENCH_$(date +%Y%m%d).json}"
ci="false"
if [ "${GITHUB_ACTIONS:-}" = "true" ]; then ci="true"; fi
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# The Hyperscale benches simulate a full day over a 10x fleet and cost tens
# of seconds per iteration, so they always run at a single iteration: the
# main invocation skips them and a second fixed-benchtime pass appends them
# to the same raw output (and thus the same JSON baseline) whenever the
# filter selects them.
go test -run '^$' -skip '^BenchmarkHyperscale' -bench "^Benchmark(${filter})" -benchmem -benchtime "$benchtime" . | tee "$raw" >&2
if printf 'HyperscaleDaySerial' | grep -qE "^(${filter})" ; then
    go test -run '^$' -bench '^BenchmarkHyperscale' -benchmem -benchtime 1x . | tee -a "$raw" >&2
fi

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v benchtime="$benchtime" -v filter="$filter" -v ci="$ci" '
BEGIN {
    jsonFilter = filter
    gsub(/\\/, "\\\\", jsonFilter); gsub(/"/, "\\\"", jsonFilter)
    print "{"
    printf "  \"date\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"filter\": \"%s\",\n  \"ci\": %s,\n  \"benchmarks\": [\n", date, benchtime, jsonFilter, ci
    n = 0
}
$1 ~ ("^Benchmark(" filter ")") {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "B/op")      printf ", \"bytes_per_op\": %s", $i
        if ($(i+1) == "allocs/op") printf ", \"allocs_per_op\": %s", $i
    }
    printf "}"
}
END { print "\n  ]\n}" }
' "$raw" > "$out"

matched="$(grep -c '"name"' "$out" || true)"
if [ "$matched" -eq 0 ]; then
    rm -f "$out"
    echo "bench.sh: BENCH_FILTER='${filter}' matched no benchmarks; no baseline written" >&2
    exit 1
fi
echo "wrote $out ($matched benchmarks)" >&2
