#!/usr/bin/env bash
# Runs the figure/table benchmarks with -benchmem and records a dated JSON
# baseline (BENCH_<yyyymmdd>.json) at the repo root, so the performance
# trajectory is tracked across PRs.
#
# Usage:
#   scripts/bench.sh                # default 2 iterations per benchmark
#   BENCHTIME=5x scripts/bench.sh   # more iterations for steadier numbers
#   BENCH_FILTER='Fig2.' scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-2x}"
filter="${BENCH_FILTER:-Table1|Fig[0-9]+|Table2|EngineTick|CompileScenario|CompiledScenarioRun}"
out="BENCH_$(date +%Y%m%d).json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "^Benchmark(${filter})" -benchmem -benchtime "$benchtime" . | tee "$raw" >&2

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v benchtime="$benchtime" '
BEGIN { print "{"; printf "  \"date\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", date, benchtime; n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "B/op")      printf ", \"bytes_per_op\": %s", $i
        if ($(i+1) == "allocs/op") printf ", \"allocs_per_op\": %s", $i
    }
    printf "}"
}
END { print "\n  ]\n}" }
' "$raw" > "$out"

echo "wrote $out" >&2
