// Command benchdiff compares two benchmark baselines produced by
// scripts/bench.sh and fails when any tracked benchmark regressed beyond the
// threshold — the CI benchmark-regression gate.
//
// Usage:
//
//	go run scripts/benchdiff.go -new bench_ci.json                # vs newest committed BENCH_*.json
//	go run scripts/benchdiff.go -base BENCH_20260729.json -new bench_ci.json -threshold 1.25
//
// Exit codes: 0 ok, 1 regression found, 2 usage/baseline errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

type baseline struct {
	Date       string      `json:"date"`
	Benchtime  string      `json:"benchtime"`
	Filter     string      `json:"filter"`
	CI         bool        `json:"ci"`
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	var (
		basePath     = flag.String("base", "", "baseline JSON (default: newest BENCH_*.json under -dir)")
		newPath      = flag.String("new", "", "fresh results JSON (required)")
		dir          = flag.String("dir", ".", "directory searched for the default baseline")
		threshold    = flag.Float64("threshold", 1.25, "fail when new/base ns/op exceeds this ratio on any benchmark")
		allowMissing = flag.Bool("allow-missing", false, "tolerate baseline benchmarks absent from the fresh run (renames); default fails so a regression cannot vanish by dropping its benchmark")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	if *basePath == "" {
		p, err := newestBaseline(*dir, *newPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		*basePath = p
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	baseBy := make(map[string]benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var names []string
	for _, b := range fresh.Benchmarks {
		if _, ok := baseBy[b.Name]; ok {
			names = append(names, b.Name)
		} else {
			fmt.Printf("NEW      %-44s %12.0f ns/op (no baseline)\n", b.Name, b.NsPerOp)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmarks in common between %s and %s\n", *basePath, *newPath)
		os.Exit(2)
	}
	freshBy := make(map[string]benchmark, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		freshBy[b.Name] = b
	}
	dropped := 0
	for _, b := range base.Benchmarks {
		if _, ok := freshBy[b.Name]; !ok {
			fmt.Printf("DROPPED  %-44s (in baseline, not in new run)\n", b.Name)
			dropped++
		}
	}

	fmt.Printf("baseline %s (%s), new %s (%s), threshold %.2fx\n",
		*basePath, base.Date, *newPath, fresh.Date, *threshold)
	regressed := 0
	for _, name := range names {
		b, f := baseBy[name], freshBy[name]
		if b.NsPerOp <= 0 {
			continue
		}
		ratio := f.NsPerOp / b.NsPerOp
		status := "ok"
		if ratio > *threshold {
			status = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-9s %-44s %12.0f → %12.0f ns/op  (%5.2fx)\n", status, name, b.NsPerOp, f.NsPerOp, ratio)
	}
	// ns/op only compares meaningfully on like hardware. When one side was
	// recorded on CI and the other on a dev machine, report but do not
	// fail — the gate arms itself once the committed baseline comes from
	// the CI artifact (same runner class as the fresh results).
	advisory := base.CI != fresh.CI
	if dropped > 0 && !*allowMissing {
		fmt.Fprintf(os.Stderr, "benchdiff: %d baseline benchmark(s) missing from the new run (pass -allow-missing for intentional renames)\n", dropped)
		os.Exit(1)
	}
	if regressed > 0 {
		if advisory {
			fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) beyond %.2fx, but baseline and new run come from different hardware classes (ci: %v vs %v) — advisory only; commit the CI artifact as the baseline to arm the gate\n",
				regressed, *threshold, base.CI, fresh.CI)
			return
		}
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond %.2fx\n", regressed, *threshold)
		os.Exit(1)
	}
}

func load(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s holds no benchmarks", path)
	}
	return &b, nil
}

// newestBaseline picks the lexicographically latest BENCH_*.json (the names
// embed the date as yyyymmdd, so lexicographic order is date order).
func newestBaseline(dir, exclude string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	sort.Strings(matches)
	ex, _ := filepath.Abs(exclude)
	for i := len(matches) - 1; i >= 0; i-- {
		if abs, _ := filepath.Abs(matches[i]); abs == ex {
			continue
		}
		return matches[i], nil
	}
	return "", fmt.Errorf("no committed BENCH_*.json baseline under %s", dir)
}
